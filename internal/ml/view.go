package ml

// This file implements the columnar dataset layout. The legacy
// representation ([]Sample, one materialized window of row slices per
// sample) keeps W slice headers per sample plus fresh zero rows for the
// front padding of early windows. SampleView stores the underlying
// packet stream exactly once — one contiguous row-major feature matrix —
// and expresses each sample's window as an index range over it, with the
// early-window zero padding resolved by index math against a single
// shared zero row.
//
// Both layouts describe identical float values, and every consumer
// (scalar trainer, minibatch trainer, Evaluate, FineTune) reads them
// through the SampleSource interface below, so training over a view is
// bitwise identical to training over the equivalent []Sample.

// SampleSource is the trainer-facing read interface over a dataset: a
// []Sample slice (via samplesOf) or a columnar SampleView. Windows are
// uniform (Steps rows of Width features); Row returns one window row
// without copying.
type SampleSource interface {
	// Len is the number of samples.
	Len() int
	// Steps is the uniform window length shared by all samples, or 0
	// when samples are empty, ragged, or have empty windows (the scalar
	// trainer handles those; the minibatch trainer requires Steps > 0).
	Steps() int
	// Row returns window row st of sample i without copying. The slice
	// must be treated as read-only and is only valid until the next
	// call for sources that synthesize rows.
	Row(i, st int) []float64
	// WindowAppend appends sample i's window rows to buf and returns
	// it — the zero-copy bridge to the [][]float64 ForwardWindow path.
	WindowAppend(buf [][]float64, i int) [][]float64
	// Target returns sample i's training targets.
	Target(i int) (latency float64, dropped, ecn bool)
}

// SampleView is the columnar dataset: every packet's feature row stored
// exactly once in a flat row-major matrix, per-sample targets in
// parallel columns, and windows expressed as index ranges. Sample i's
// window is the Window consecutive rows ending at global row Start+i;
// rows with negative global index (the early-window padding) resolve to
// a shared zero row instead of materialized zero vectors.
//
// A view built by NewSampleBank owns its matrix; Slice returns
// sub-views sharing it. Do not append to a view that has live slices.
type SampleView struct {
	Width  int // features per row
	Window int // rows per sample window

	// Feats is the shared row-major feature matrix: row g occupies
	// Feats[g*Width : (g+1)*Width]. Sub-views index the full matrix, so
	// a chronological test split still sees its pre-cut history.
	Feats []float64

	// Per-sample targets (length = Len()).
	Latency []float64
	Dropped []bool
	ECN     []bool

	// Start maps sample 0 to its final window row's global index: row
	// st of sample i is global row Start + i + st - Window + 1.
	Start int

	zero []float64 // shared padding row, len Width
}

// NewSampleBank returns an empty view preallocated for capacity samples
// of width features over window-row windows. The caller appends one row
// per sample (Append, or directly into Feats followed by PushTarget).
func NewSampleBank(width, window, capacity int) *SampleView {
	return &SampleView{
		Width:   width,
		Window:  window,
		Feats:   make([]float64, 0, capacity*width),
		Latency: make([]float64, 0, capacity),
		Dropped: make([]bool, 0, capacity),
		ECN:     make([]bool, 0, capacity),
		zero:    make([]float64, width),
	}
}

// Append copies one packet's feature row into the matrix and records
// its sample targets.
func (v *SampleView) Append(row []float64, latency float64, dropped, ecn bool) {
	v.Feats = append(v.Feats, row...)
	v.PushTarget(latency, dropped, ecn)
}

// PushTarget records the targets of the next sample; the caller must
// have just appended exactly one Width-long feature row to Feats.
func (v *SampleView) PushTarget(latency float64, dropped, ecn bool) {
	v.Latency = append(v.Latency, latency)
	v.Dropped = append(v.Dropped, dropped)
	v.ECN = append(v.ECN, ecn)
}

// Len returns the number of samples.
func (v *SampleView) Len() int { return len(v.Latency) }

// Steps returns the window length (uniform by construction).
func (v *SampleView) Steps() int { return v.Window }

// zeroRow returns the shared padding row, building it lazily for views
// assembled by hand rather than through NewSampleBank. Views on shared
// hot paths always come from NewSampleBank (or Slice, which inherits
// the row), so the lazy branch never races.
func (v *SampleView) zeroRow() []float64 {
	if v.zero == nil {
		v.zero = make([]float64, v.Width)
	}
	return v.zero
}

// Row returns window row st of sample i by index math: global row
// Start+i+st-Window+1, or the shared zero row for the padded prefix of
// early windows. No copy is made.
func (v *SampleView) Row(i, st int) []float64 {
	g := v.Start + i + st - v.Window + 1
	if g < 0 {
		return v.zeroRow()
	}
	return v.Feats[g*v.Width : (g+1)*v.Width]
}

// WindowAppend appends sample i's window rows (aliases into the matrix,
// zero row for padding) to buf and returns it.
func (v *SampleView) WindowAppend(buf [][]float64, i int) [][]float64 {
	for st := 0; st < v.Window; st++ {
		buf = append(buf, v.Row(i, st))
	}
	return buf
}

// Target returns sample i's training targets.
func (v *SampleView) Target(i int) (latency float64, dropped, ecn bool) {
	return v.Latency[i], v.Dropped[i], v.ECN[i]
}

// Slice returns the sub-view of samples [lo, hi). The feature matrix
// and zero row are shared, not copied — a chronological test split
// keeps every row of history preceding its cut visible through Row,
// exactly as the legacy layout materialized it into padded windows.
func (v *SampleView) Slice(lo, hi int) *SampleView {
	return &SampleView{
		Width:   v.Width,
		Window:  v.Window,
		Feats:   v.Feats,
		Latency: v.Latency[lo:hi],
		Dropped: v.Dropped[lo:hi],
		ECN:     v.ECN[lo:hi],
		Start:   v.Start + lo,
		zero:    v.zero,
	}
}

// WithLatency returns a shallow view sharing everything but the latency
// column — the incremental-update path retargets latencies against an
// older normalization without copying the matrix.
func (v *SampleView) WithLatency(latency []float64) *SampleView {
	if len(latency) != v.Len() {
		panic("ml: WithLatency length mismatch")
	}
	w := *v
	w.Latency = latency
	return &w
}

// At materializes sample i in the legacy layout (fresh row copies) for
// tests and compatibility shims.
func (v *SampleView) At(i int) Sample {
	win := make([][]float64, v.Window)
	for st := range win {
		row := make([]float64, v.Width)
		copy(row, v.Row(i, st))
		win[st] = row
	}
	lat, dropped, ecn := v.Target(i)
	return Sample{Window: win, Latency: lat, Dropped: dropped, ECN: ecn}
}

// Bytes reports the resident size of the view's own storage (matrix +
// target columns), for the dataset gauges.
func (v *SampleView) Bytes() int {
	return 8*len(v.Feats) + 8*len(v.Latency) + len(v.Dropped) + len(v.ECN)
}

// samplesSource adapts the legacy []Sample layout to SampleSource. The
// window length is computed once at construction: Steps is consulted
// per batch, and rescanning the slice there would be quadratic.
type samplesSource struct {
	s     []Sample
	steps int
}

// samplesOf wraps legacy samples as a SampleSource.
func samplesOf(s []Sample) *samplesSource {
	return &samplesSource{s: s, steps: uniformSteps(s)}
}

func (c *samplesSource) Len() int   { return len(c.s) }
func (c *samplesSource) Steps() int { return c.steps }

func (c *samplesSource) Row(i, st int) []float64 { return c.s[i].Window[st] }

func (c *samplesSource) WindowAppend(buf [][]float64, i int) [][]float64 {
	return append(buf, c.s[i].Window...)
}

func (c *samplesSource) Target(i int) (latency float64, dropped, ecn bool) {
	s := &c.s[i]
	return s.Latency, s.Dropped, s.ECN
}
