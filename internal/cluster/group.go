package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mimicnet/internal/sim"
)

// Groups of simulations: the paper evaluates "partitioned" (the horizon
// split across instances) and "parallel" (independent full-horizon
// instances with different seeds) execution modes (§9.3). Group runs
// either mode as a library feature with bounded concurrency.

// GroupResult aggregates a group run.
type GroupResult struct {
	Results []Results     // per-instance, in input order
	Wall    time.Duration // time until the whole group finished
}

// AllFCTs concatenates the instances' FCT samples.
func (g GroupResult) AllFCTs() []float64 {
	var out []float64
	for _, r := range g.Results {
		out = append(out, r.FCTs...)
	}
	return out
}

// TotalEvents sums processed events across instances.
func (g GroupResult) TotalEvents() uint64 {
	var total uint64
	for _, r := range g.Results {
		total += r.Events
	}
	return total
}

// RunGroup executes one simulation per config concurrently (bounded by
// parallelism; 0 means NumCPU) and runs each to the given horizon.
// Configs are validated up front so a late failure cannot waste the
// group's work.
func RunGroup(cfgs []Config, until sim.Time, parallelism int) (GroupResult, error) {
	if len(cfgs) == 0 {
		return GroupResult{}, fmt.Errorf("cluster: empty group")
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	// Validate by constructing all instances first; construction is cheap
	// relative to running.
	insts := make([]*Simulation, len(cfgs))
	for i, cfg := range cfgs {
		inst, err := New(cfg)
		if err != nil {
			return GroupResult{}, fmt.Errorf("cluster: group member %d: %w", i, err)
		}
		insts[i] = inst
	}
	t0 := time.Now()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	results := make([]Results, len(insts))
	for i, inst := range insts {
		wg.Add(1)
		go func(i int, inst *Simulation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			inst.Run(until)
			results[i] = inst.Results()
		}(i, inst)
	}
	wg.Wait()
	return GroupResult{Results: results, Wall: time.Since(t0)}, nil
}

// PartitionedConfigs derives n configs that split the horizon of base
// into n seed-varied chunks (the paper's partitioned mode: each instance
// simulates S/n seconds). Returns the per-instance horizon.
func PartitionedConfigs(base Config, n int, horizon sim.Time) ([]Config, sim.Time) {
	chunk := sim.Time(uint64(horizon) / uint64(n))
	if chunk <= 0 {
		chunk = horizon
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Workload.Seed = base.Workload.Seed + int64(i) + 1
		if cfg.Workload.Duration > chunk {
			cfg.Workload.Duration = chunk
		}
		cfgs[i] = cfg
	}
	return cfgs, chunk
}

// ParallelConfigs derives n full-horizon configs with distinct seeds
// (the paper's parallel mode for maximizing aggregate throughput).
func ParallelConfigs(base Config, n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfg := base
		cfg.Workload.Seed = base.Workload.Seed + int64(i) + 1
		cfgs[i] = cfg
	}
	return cfgs
}
