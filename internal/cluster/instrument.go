package cluster

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
)

// This file provides the "arbitrary instrumentation" surface the paper
// promises for the observable cluster (§2.1, §7.1: "users can add
// arbitrary instrumentation, e.g., by dumping pcaps or queue depths"):
// a periodic queue-depth sampler and a packet trace logger.

// QueueSample is one observation of a port's queue.
type QueueSample struct {
	At      sim.Time
	From    int
	To      int
	Packets int
	Bytes   int
}

// QueueDepthSampler periodically samples the queue depth of selected
// ports. Attach before the simulation runs.
type QueueDepthSampler struct {
	Interval sim.Time
	Samples  []QueueSample

	ports [][2]int
	inst  *Simulation
}

// SampleQueues samples every port of the observable cluster's switches at
// the given interval until the simulation ends. Passing specific port
// pairs restricts the set.
func (inst *Simulation) SampleQueues(interval sim.Time, ports ...[2]int) *QueueDepthSampler {
	s := &QueueDepthSampler{Interval: interval, inst: inst, ports: ports}
	if len(s.ports) == 0 {
		s.ports = inst.observablePorts()
	}
	var tick func()
	tick = func() {
		for _, p := range s.ports {
			port := inst.Fabric.Port(p[0], p[1])
			if port == nil {
				continue
			}
			s.Samples = append(s.Samples, QueueSample{
				At: inst.Sim.Now(), From: p[0], To: p[1],
				Packets: port.QueueLen(), Bytes: port.QueueBytes(),
			})
		}
		inst.Sim.After(interval, tick)
	}
	inst.Sim.At(0, tick)
	return s
}

// observablePorts enumerates the switch-side directed ports of the
// observable cluster (ToR and agg output queues — where fan-in congestion
// lives).
func (inst *Simulation) observablePorts() [][2]int {
	t := inst.Topo
	c := inst.Cfg.Observable
	tc := t.Config()
	var ports [][2]int
	for r := 0; r < tc.RacksPerCluster; r++ {
		tor := t.ToRID(c, r)
		for slot := 0; slot < tc.HostsPerRack; slot++ {
			ports = append(ports, [2]int{tor, t.HostID(c, r, slot)})
		}
		for a := 0; a < tc.AggPerCluster; a++ {
			agg := t.AggID(c, a)
			ports = append(ports, [2]int{tor, agg}, [2]int{agg, tor})
		}
	}
	return ports
}

// MaxDepth returns the maximum sampled queue depth in packets.
func (s *QueueDepthSampler) MaxDepth() int {
	max := 0
	for _, smp := range s.Samples {
		if smp.Packets > max {
			max = smp.Packets
		}
	}
	return max
}

// WriteCSV dumps the samples as CSV (at_seconds, from, to, packets, bytes).
func (s *QueueDepthSampler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_seconds", "from", "to", "packets", "bytes"}); err != nil {
		return err
	}
	for _, smp := range s.Samples {
		err := cw.Write([]string{
			strconv.FormatFloat(smp.At.Seconds(), 'g', -1, 64),
			s.inst.Topo.Name(smp.From),
			s.inst.Topo.Name(smp.To),
			strconv.Itoa(smp.Packets),
			strconv.Itoa(smp.Bytes),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PacketLogger streams a pcap-like text record of packets crossing the
// observable cluster's host interfaces.
type PacketLogger struct {
	w     io.Writer
	count uint64
	err   error
}

// LogPackets attaches a packet logger to the simulation. Records are
// emitted for packets arriving at observable-cluster hosts and packets
// those hosts send.
func (inst *Simulation) LogPackets(w io.Writer) *PacketLogger {
	l := &PacketLogger{w: w}
	t := inst.Topo
	obs := inst.Cfg.Observable
	prevSend := inst.Fabric.Taps.OnSend
	prevArrive := inst.Fabric.Taps.OnArrive
	inst.Fabric.Taps.OnSend = func(from, to int, pkt *netsim.Packet, at sim.Time) {
		if t.KindOf(from) == topo.KindHost && t.ClusterOf(from) == obs {
			l.log("send", from, pkt, at)
		}
		if prevSend != nil {
			prevSend(from, to, pkt, at)
		}
	}
	inst.Fabric.Taps.OnArrive = func(node int, pkt *netsim.Packet, at sim.Time) {
		if t.KindOf(node) == topo.KindHost && t.ClusterOf(node) == obs {
			l.log("recv", node, pkt, at)
		}
		if prevArrive != nil {
			prevArrive(node, pkt, at)
		}
	}
	return l
}

func (l *PacketLogger) log(kind string, node int, pkt *netsim.Packet, at sim.Time) {
	if l.err != nil {
		return
	}
	l.count++
	kindFlag := "data"
	if pkt.IsAck {
		kindFlag = "ack"
	}
	if pkt.IsGrant {
		kindFlag = "grant"
	}
	_, l.err = fmt.Fprintf(l.w, "%.9f %s node=%d flow=%d %s seq=%d len=%d ce=%t\n",
		at.Seconds(), kind, node, pkt.FlowID, kindFlag, pkt.Seq, pkt.Payload, pkt.CE)
}

// Count returns the number of records written.
func (l *PacketLogger) Count() uint64 { return l.count }

// Err returns the first write error, if any.
func (l *PacketLogger) Err() error { return l.err }
