// Package cluster assembles full-fidelity packet-level simulations: a
// FatTree fabric, per-host transport stacks, a generated workload, and
// the instrumentation MimicNet needs—metrics collection at the observable
// cluster's hosts and packet taps at cluster boundaries (paper §5.1).
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"strconv"

	"mimicnet/internal/metrics"
	"mimicnet/internal/netsim"
	"mimicnet/internal/sim"
	"mimicnet/internal/topo"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// Config describes a full simulation.
type Config struct {
	Topo     topo.Config
	Link     netsim.LinkConfig
	Protocol transport.Protocol
	Workload workload.Config

	// Observable selects the cluster whose hosts are instrumented for
	// FCT/throughput/RTT (paper: exactly one observable cluster).
	Observable int

	// ECNThresholdK sets the switch marking threshold when the protocol
	// uses ECN (DCTCP's K, Figure 13). Zero selects the default of 20.
	ECNThresholdK int

	// QueueCapacity is the per-port queue capacity in packets (0 = 100).
	QueueCapacity int

	// CustomQueue, when set, overrides the protocol-derived switch queue
	// discipline (e.g. to run RED ablations).
	CustomQueue netsim.QueueFactory

	// SequentialInference disables the batched Mimic inference engine,
	// running one model step per boundary packet inline instead of
	// fusing steps across Mimic clusters (core.InferenceScheduler).
	// Batched is the default; the two modes produce identical results
	// (see core/scheduler.go for the invariants and tests).
	SequentialInference bool

	// BatchWindow overrides the batched engine's collection window
	// (0 = derive from the models' latency lower bound, < 0 = flush at
	// the same timestamp). Windows above the models' latency lower
	// bound delay predictions past delivery deadlines; continuations
	// are then clamped to the flush time, trading exactness for batch
	// size. Ignored under SequentialInference. Sharded compositions
	// additionally cap the window at the cross-LP causality bound
	// (egress latency floor minus lookahead).
	BatchWindow sim.Time

	// ShardedRun selects whether composed/hybrid simulations partition
	// into one logical process per cluster (core switches ride with the
	// observable cluster) and run the windows in parallel: 0 = auto
	// (sharded when GOMAXPROCS > 1), 1 = force sharded, -1 = force
	// sequential. Sharded and sequential runs produce bitwise-identical
	// Results; only wall-clock time differs. Full-fidelity simulations
	// (cluster.New) are tightly coupled and always run sequentially —
	// that contrast is MimicNet's Figure 2 motivation.
	ShardedRun int

	// NumWorkers bounds the worker goroutines executing shards (0 =
	// GOMAXPROCS). Has no effect on results.
	NumWorkers int
}

// Sharded resolves the ShardedRun knob against the host.
func (c Config) Sharded() bool {
	switch {
	case c.ShardedRun > 0:
		return true
	case c.ShardedRun < 0:
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1
	}
}

// ShardWorkers resolves the worker count for a sharded run.
func (c Config) ShardWorkers() int {
	if c.NumWorkers > 0 {
		return c.NumWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the paper's base configuration at a given cluster
// count: TCP New Reno, DropTail, ECMP, 100 Mbps / 500 µs links.
func DefaultConfig(clusters int) Config {
	wl := workload.DefaultConfig(150_000)
	return Config{
		Topo:     topo.DefaultConfig().WithClusters(clusters),
		Link:     netsim.DefaultLinkConfig(),
		Protocol: transport.NewRenoProtocol(),
		Workload: wl,
	}
}

// QueueFactory picks the switch queue discipline required by the
// protocol: ECN marking for DCTCP, strict priority for Homa, DropTail
// otherwise.
func (c Config) QueueFactory() netsim.QueueFactory {
	if c.CustomQueue != nil {
		return c.CustomQueue
	}
	capacity := c.QueueCapacity
	if capacity <= 0 {
		capacity = 100
	}
	switch {
	case c.Protocol.UsesECN():
		k := c.ECNThresholdK
		if k <= 0 {
			k = 20
		}
		return netsim.ECNFactory(capacity, k)
	case c.Protocol.QueueBands() > 1:
		return netsim.PriorityFactory(c.Protocol.QueueBands(), capacity)
	default:
		return netsim.DropTailFactory(capacity)
	}
}

// BDPBytes estimates the bandwidth-delay product of the longest (6-hop
// inter-cluster) path for transport sizing.
func (c Config) BDPBytes() int {
	rttSec := 12 * c.Link.Delay.Seconds() // 6 links each way
	bdp := int(c.Link.RateBps / 8 * rttSec)
	if bdp < netsim.MSS {
		bdp = netsim.MSS
	}
	return bdp
}

// Simulation is a runnable full-fidelity instance.
type Simulation struct {
	Cfg       Config
	Sim       *sim.Simulator
	Topo      *topo.Topology
	Fabric    *netsim.Fabric
	Env       *transport.Env
	Collector *metrics.Collector

	hosts []*transport.Host
	flows []workload.Flow

	// waiting maps a parent flow ID to the dependent flows gated on its
	// completion (co-flow support).
	waiting map[uint64][]workload.Flow

	// FlowsStarted / FlowsCompleted count observable-cluster flows.
	FlowsStarted, FlowsCompleted int

	// Progress, if set, is invoked periodically from RunContext's run
	// loop with the simulated clock and events processed so far.
	Progress func(now sim.Time, events uint64)

	cancelled bool
}

// New builds a simulation. The workload is generated immediately so the
// caller can inspect it before running.
func New(cfg Config) (*Simulation, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("cluster: config needs a protocol")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Observable < 0 || cfg.Observable >= cfg.Topo.Clusters {
		return nil, fmt.Errorf("cluster: observable cluster %d out of range", cfg.Observable)
	}
	t := topo.New(cfg.Topo)
	cfg.Workload.HostLinkBps = cfg.Link.RateBps
	flows, err := workload.Generate(t, cfg.Workload)
	if err != nil {
		return nil, err
	}

	s := sim.New()
	link := cfg.Link
	link.SwitchQueue = cfg.QueueFactory()
	fabric := netsim.NewFabric(s, t, link)

	inst := &Simulation{
		Cfg: cfg, Sim: s, Topo: t, Fabric: fabric,
		Collector: metrics.NewCollector(),
		flows:     flows,
		waiting:   make(map[uint64][]workload.Flow),
	}
	inst.Env = &transport.Env{
		Sim:      s,
		MSS:      netsim.MSS,
		BDPBytes: cfg.BDPBytes(),
		Inject: func(pkt *netsim.Packet) {
			pkt.Path = t.Path(pkt.Src, pkt.Dst, pkt.Hash)
			fabric.Inject(pkt)
		},
		OnRTT: func(f *transport.Flow, sec float64) {
			if t.ClusterOf(f.Src) == cfg.Observable {
				inst.Collector.RTTSample(sec)
			}
		},
		OnComplete: func(f *transport.Flow) {
			if inst.observes(f.Src, f.Dst) {
				inst.Collector.FlowCompleted(flowKey(f.ID), s.Now())
				inst.FlowsCompleted++
			}
			inst.releaseDependents(f.ID)
		},
	}

	inst.hosts = make([]*transport.Host, t.Hosts())
	for h := 0; h < t.Hosts(); h++ {
		h := h
		host := transport.NewHost(h, inst.Env, func(f *transport.Flow) *transport.Receiver {
			r := transport.NewReceiver(inst.Env, f)
			if transport.IsHoma(cfg.Protocol) {
				bdp := inst.Env.BDPBytes
				r.EnableGranting(func(remaining int64) int {
					return transport.HomaPriority(remaining, bdp)
				})
			}
			if t.ClusterOf(h) == cfg.Observable {
				r.OnDeliver = func(n int64) {
					inst.Collector.BytesReceived(h, n, s.Now())
				}
			}
			return r
		})
		inst.hosts[h] = host
		fabric.RegisterHost(h, host.Receive)
	}

	// Schedule root flows; dependents wait for their parent's completion.
	for _, f := range flows {
		f := f
		if f.After != 0 {
			inst.waiting[f.After] = append(inst.waiting[f.After], f)
			continue
		}
		s.At(f.Start, func() { inst.startFlow(f) })
	}
	return inst, nil
}

// releaseDependents starts flows gated on the completed parent, each
// after its configured stage delay.
func (inst *Simulation) releaseDependents(parent uint64) {
	deps := inst.waiting[parent]
	if len(deps) == 0 {
		return
	}
	delete(inst.waiting, parent)
	for _, f := range deps {
		f := f
		inst.Sim.After(f.Start, func() { inst.startFlow(f) })
	}
}

func flowKey(id uint64) string { return strconv.FormatUint(id, 10) }

func (inst *Simulation) observes(src, dst int) bool {
	return inst.Topo.ClusterOf(src) == inst.Cfg.Observable ||
		inst.Topo.ClusterOf(dst) == inst.Cfg.Observable
}

func (inst *Simulation) startFlow(f workload.Flow) {
	tf := &transport.Flow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
		Hash: topo.FlowHash(f.Src, f.Dst, f.ID),
	}
	sender := inst.Cfg.Protocol.NewSender(inst.Env, tf)
	inst.hosts[f.Src].AddSender(f.ID, sender)
	if inst.observes(f.Src, f.Dst) {
		inst.Collector.FlowStarted(flowKey(f.ID), f.Src, f.Dst, f.Bytes, inst.Sim.Now())
		inst.FlowsStarted++
	}
	sender.Start()
}

// AddFlows schedules additional flows (e.g. co-flow jobs from
// workload.GenerateCoflows) on top of the generated background traffic.
// Root flows are scheduled at their Start time; dependent flows are gated
// on their parent's completion. Must be called before Run.
func (inst *Simulation) AddFlows(flows []workload.Flow) error {
	for _, f := range flows {
		if f.Src < 0 || f.Src >= inst.Topo.Hosts() || f.Dst < 0 || f.Dst >= inst.Topo.Hosts() {
			return fmt.Errorf("cluster: flow %d has out-of-range endpoints", f.ID)
		}
		f := f
		inst.flows = append(inst.flows, f)
		if f.After != 0 {
			inst.waiting[f.After] = append(inst.waiting[f.After], f)
			continue
		}
		inst.Sim.At(f.Start, func() { inst.startFlow(f) })
	}
	return nil
}

// Flows returns the generated schedule.
func (inst *Simulation) Flows() []workload.Flow { return inst.flows }

// Run advances the simulation to the given simulated time.
func (inst *Simulation) Run(until sim.Time) {
	pre := inst.Sim.Processed()
	inst.Sim.RunUntil(until)
	sim.CountKernelEvents(inst.Sim.Processed() - pre)
}

// CancelCheckEvery is how many kernel events elapse between cooperative
// cancellation checks in RunContext. Small enough that a killed job stops
// within milliseconds of wall-clock, large enough that the per-event cost
// is unmeasurable.
const CancelCheckEvery = 8192

// RunContext advances the simulation to the given simulated time,
// checking ctx every CancelCheckEvery events and reporting through the
// Progress hook. On cancellation it stops promptly, leaves the metrics
// collected so far intact, and returns true; Results then carries
// Cancelled so partial distributions are never mistaken for a full run.
func (inst *Simulation) RunContext(ctx context.Context, until sim.Time) (cancelled bool) {
	if ctx == nil || (ctx.Done() == nil && inst.Progress == nil) {
		inst.Run(until)
		return false
	}
	inst.Sim.SetTicker(CancelCheckEvery, func(now sim.Time, events uint64) bool {
		if inst.Progress != nil {
			inst.Progress(now, events)
		}
		if ctx.Err() != nil {
			inst.cancelled = true
			return true
		}
		return false
	})
	defer inst.Sim.SetTicker(0, nil)
	pre := inst.Sim.Processed()
	inst.Sim.RunUntil(until)
	sim.CountKernelEvents(inst.Sim.Processed() - pre)
	return inst.cancelled
}

// Results bundles the three end-to-end metric distributions.
type Results struct {
	FCTs        []float64
	Throughputs []float64
	RTTs        []float64
	FCTByID     map[string]float64
	Events      uint64 // simulator events processed
	Packets     uint64 // packets injected into the fabric
	Drops       uint64

	// Cancelled marks a partial snapshot: the run was interrupted via
	// RunContext before reaching its horizon.
	Cancelled bool
}

// Results snapshots the collected metrics.
func (inst *Simulation) Results() Results {
	return Results{
		FCTs:        inst.Collector.FCTs(),
		Throughputs: inst.Collector.Throughputs(),
		RTTs:        inst.Collector.RTTs(),
		FCTByID:     inst.Collector.FCTByID(),
		Events:      inst.Sim.Processed(),
		Packets:     inst.Fabric.Injected(),
		Drops:       inst.Fabric.Drops(),
		Cancelled:   inst.cancelled,
	}
}
