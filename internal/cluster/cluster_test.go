package cluster

import (
	"bytes"
	"strings"
	"testing"

	"mimicnet/internal/metrics"
	"mimicnet/internal/sim"
	"mimicnet/internal/transport"
	"mimicnet/internal/workload"
)

// smallConfig returns a fast 2-cluster configuration for tests.
func smallConfig(protocol string) Config {
	cfg := DefaultConfig(2)
	p, err := transport.ByName(protocol)
	if err != nil {
		panic(err)
	}
	cfg.Protocol = p
	cfg.Workload = workload.DefaultConfig(20_000)
	cfg.Workload.Duration = 100 * sim.Millisecond
	cfg.Workload.Load = 0.5
	return cfg
}

func TestFullSimulationBaseline(t *testing.T) {
	inst, err := New(smallConfig("newreno"))
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Flows()) == 0 {
		t.Fatal("no flows scheduled")
	}
	inst.Run(400 * sim.Millisecond)
	res := inst.Results()
	if len(res.FCTs) == 0 {
		t.Fatal("no FCTs collected")
	}
	if len(res.RTTs) == 0 {
		t.Fatal("no RTTs collected")
	}
	if len(res.Throughputs) == 0 {
		t.Fatal("no throughput samples")
	}
	if res.Events == 0 || res.Packets == 0 {
		t.Error("no work recorded")
	}
	if inst.FlowsCompleted == 0 {
		t.Error("no observable flows completed")
	}
	if inst.FlowsCompleted > inst.FlowsStarted {
		t.Error("completed more flows than started")
	}
	for _, fct := range res.FCTs {
		if fct <= 0 {
			t.Fatalf("non-positive FCT %v", fct)
		}
	}
	for _, rtt := range res.RTTs {
		// Minimum possible RTT: 2 links each way at 500us = 2ms.
		if rtt < 0.002-1e-9 {
			t.Fatalf("RTT %v below propagation floor", rtt)
		}
	}
}

func TestAllProtocolsRun(t *testing.T) {
	for _, name := range transport.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			inst, err := New(smallConfig(name))
			if err != nil {
				t.Fatal(err)
			}
			inst.Run(400 * sim.Millisecond)
			res := inst.Results()
			if len(res.FCTs) == 0 {
				t.Errorf("%s: no flows completed", name)
			}
		})
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Results {
		inst, err := New(smallConfig("newreno"))
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(300 * sim.Millisecond)
		return inst.Results()
	}
	a, b := run(), run()
	if a.Events != b.Events || a.Packets != b.Packets || a.Drops != b.Drops {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
	if len(a.FCTs) != len(b.FCTs) {
		t.Fatalf("FCT counts differ: %d vs %d", len(a.FCTs), len(b.FCTs))
	}
	for i := range a.FCTs {
		if a.FCTs[i] != b.FCTs[i] {
			t.Fatalf("FCT %d differs", i)
		}
	}
}

func TestObservableClusterFiltering(t *testing.T) {
	cfg := smallConfig("newreno")
	cfg.Observable = 1
	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(300 * sim.Millisecond)
	// Every collected flow must touch cluster 1.
	for _, f := range inst.Collector.Flows() {
		if inst.Topo.ClusterOf(f.SrcHost) != 1 && inst.Topo.ClusterOf(f.DstHost) != 1 {
			t.Fatalf("flow %s does not touch observable cluster", f.ID)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig("newreno")
	cfg.Protocol = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil protocol accepted")
	}
	cfg = smallConfig("newreno")
	cfg.Observable = 5
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range observable accepted")
	}
	cfg = smallConfig("newreno")
	cfg.Topo.Clusters = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid topology accepted")
	}
	cfg = smallConfig("newreno")
	cfg.Workload.Load = -1
	if _, err := New(cfg); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestDCTCPUsesECNQueues(t *testing.T) {
	cfg := smallConfig("dctcp")
	cfg.ECNThresholdK = 10
	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst.Run(400 * sim.Millisecond)
	res := inst.Results()
	if len(res.FCTs) == 0 {
		t.Fatal("dctcp run completed no flows")
	}
	// DCTCP under load should complete flows with fewer drops than the
	// same run would with loss-based backoff; at minimum it must not
	// deadlock and RTTs should stay bounded.
	for _, rtt := range res.RTTs {
		if rtt > 1.0 {
			t.Fatalf("pathological RTT %v under DCTCP", rtt)
		}
	}
}

func TestBDPBytes(t *testing.T) {
	cfg := DefaultConfig(2)
	bdp := cfg.BDPBytes()
	// 100 Mbps * 6 ms RTT = 75000 bytes.
	if bdp < 70_000 || bdp > 80_000 {
		t.Errorf("BDP = %d, want ~75000", bdp)
	}
}

func TestHigherLoadMoreDrops(t *testing.T) {
	at := func(load float64) uint64 {
		cfg := smallConfig("newreno")
		cfg.Workload.Load = load
		inst, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst.Run(300 * sim.Millisecond)
		return inst.Results().Drops
	}
	low, high := at(0.1), at(0.9)
	if high < low {
		t.Errorf("drops at 90%% load (%d) < drops at 10%% (%d)", high, low)
	}
}

func TestCoflowDependencyScheduling(t *testing.T) {
	cfg := smallConfig("newreno")
	// Replace background traffic with a tiny co-flow job: stage 2 must
	// start only after stage 1 completes.
	cfg.Workload.Load = 0.01 // near-idle background
	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := workload.GenerateCoflows(inst.Topo, workload.CoflowConfig{
		Seed: 5, Jobs: 2, Stages: 3, Width: 2,
		FlowBytes: 20_000, ArrivalGap: 5 * sim.Millisecond,
		StageDelay: sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with the co-flows merged in.
	inst2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.AddFlows(cf); err != nil {
		t.Fatal(err)
	}
	bad := []workload.Flow{{ID: 1, Src: -1, Dst: 0, Bytes: 10}}
	if err := inst2.AddFlows(bad); err == nil {
		t.Error("out-of-range flow accepted")
	}
	inst2.Run(2 * sim.Second)

	// The collector only tracks flows touching the observable cluster;
	// every such co-flow flow should complete, and each dependent flow
	// with an observed parent must start after that parent finished.
	observed := func(f workload.Flow) bool {
		return inst2.Topo.ClusterOf(f.Src) == cfg.Observable ||
			inst2.Topo.ClusterOf(f.Dst) == cfg.Observable
	}
	completed := inst2.Collector.FCTByID()
	checked := 0
	for _, f := range cf {
		if !observed(f) {
			continue
		}
		if _, ok := completed[flowKey(f.ID)]; !ok {
			t.Fatalf("observed coflow flow %d never completed", f.ID)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no coflow flows touched the observable cluster")
	}
	flowRecs := make(map[string]*metrics.FlowRecord)
	for _, r := range inst2.Collector.Flows() {
		flowRecs[r.ID] = r
	}
	ordered := 0
	for _, f := range cf {
		if f.After == 0 {
			continue
		}
		child := flowRecs[flowKey(f.ID)]
		parent := flowRecs[flowKey(f.After)]
		if child == nil || parent == nil {
			continue // one endpoint pair unobserved
		}
		if child.Start < parent.End {
			t.Fatalf("dependent flow %d started at %v before parent finished at %v",
				f.ID, child.Start, parent.End)
		}
		ordered++
	}
	if ordered == 0 {
		t.Fatal("no observed parent-child pair exercised the ordering check")
	}
}

func TestQueueDepthSampler(t *testing.T) {
	cfg := smallConfig("newreno")
	cfg.Workload.Load = 0.9
	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampler := inst.SampleQueues(sim.Millisecond)
	inst.Run(200 * sim.Millisecond)
	if len(sampler.Samples) == 0 {
		t.Fatal("no queue samples")
	}
	if sampler.MaxDepth() == 0 {
		t.Error("queues never built at 90% load")
	}
	var buf bytes.Buffer
	if err := sampler.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampler.Samples)+1 {
		t.Errorf("CSV lines = %d, want %d", len(lines), len(sampler.Samples)+1)
	}
	if !strings.HasPrefix(lines[0], "at_seconds,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestPacketLogger(t *testing.T) {
	cfg := smallConfig("newreno")
	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := inst.LogPackets(&buf)
	inst.Run(100 * sim.Millisecond)
	if logger.Count() == 0 {
		t.Fatal("no packets logged")
	}
	if logger.Err() != nil {
		t.Fatal(logger.Err())
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(first, "flow=") || !strings.Contains(first, "seq=") {
		t.Errorf("log line format: %q", first)
	}
}

func TestRunGroupParallelMode(t *testing.T) {
	base := smallConfig("newreno")
	cfgs := ParallelConfigs(base, 3)
	if len(cfgs) != 3 {
		t.Fatal("wrong group size")
	}
	seeds := map[int64]bool{}
	for _, c := range cfgs {
		seeds[c.Workload.Seed] = true
	}
	if len(seeds) != 3 {
		t.Error("parallel configs must vary seeds")
	}
	g, err := RunGroup(cfgs, 200*sim.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != 3 {
		t.Fatalf("results = %d", len(g.Results))
	}
	for i, r := range g.Results {
		if len(r.FCTs) == 0 {
			t.Errorf("instance %d completed no flows", i)
		}
	}
	if len(g.AllFCTs()) != len(g.Results[0].FCTs)+len(g.Results[1].FCTs)+len(g.Results[2].FCTs) {
		t.Error("AllFCTs lost samples")
	}
	if g.TotalEvents() == 0 || g.Wall <= 0 {
		t.Error("group accounting empty")
	}
	// Different seeds ⇒ different results (with overwhelming probability).
	if g.Results[0].Events == g.Results[1].Events && g.Results[1].Events == g.Results[2].Events {
		t.Error("seed variation had no effect")
	}
}

func TestRunGroupPartitionedMode(t *testing.T) {
	base := smallConfig("newreno")
	cfgs, chunk := PartitionedConfigs(base, 4, 200*sim.Millisecond)
	if chunk != 50*sim.Millisecond {
		t.Errorf("chunk = %v", chunk)
	}
	for _, c := range cfgs {
		if c.Workload.Duration > chunk {
			t.Error("workload horizon not clamped to chunk")
		}
	}
	g, err := RunGroup(cfgs, chunk, 0) // parallelism 0 = NumCPU
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != 4 {
		t.Fatal("wrong result count")
	}
}

func TestRunGroupValidation(t *testing.T) {
	if _, err := RunGroup(nil, sim.Second, 1); err == nil {
		t.Error("empty group accepted")
	}
	bad := smallConfig("newreno")
	bad.Protocol = nil
	if _, err := RunGroup([]Config{smallConfig("newreno"), bad}, sim.Second, 1); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestRunGroupDeterministicPerMember(t *testing.T) {
	base := smallConfig("newreno")
	run := func() GroupResult {
		g, err := RunGroup(ParallelConfigs(base, 2), 150*sim.Millisecond, 2)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := run(), run()
	for i := range a.Results {
		if a.Results[i].Events != b.Results[i].Events {
			t.Fatalf("member %d nondeterministic across group runs", i)
		}
	}
}
