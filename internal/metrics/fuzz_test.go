package metrics

import (
	"math"
	"testing"
)

// sanitize clips fuzz inputs to finite values; the NaN/Inf cases are
// asserted separately with explicit expectations.
func sanitize(vs []float64) []float64 {
	out := make([]float64, 0, len(vs))
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// FuzzW1 checks the metric axioms W1 must satisfy on arbitrary finite
// samples, including unequal sample counts (the piecewise-CDF path):
// non-negativity, symmetry, and identity of indiscernibles.
func FuzzW1(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, 5.0)
	f.Add(0.0, 0.0, 0.0, -1.0, 1.0)
	f.Add(1e-9, 1e9, -1e9, 0.5, 0.25)
	f.Fuzz(func(t *testing.T, a1, a2, a3, b1, b2 float64) {
		a := sanitize([]float64{a1, a2, a3})
		b := sanitize([]float64{b1, b2}) // len(a) != len(b) when all finite
		if len(a) == 0 || len(b) == 0 {
			if !math.IsNaN(W1(a, b)) {
				t.Fatal("W1 on empty input must be NaN")
			}
			return
		}
		ab, ba := W1(a, b), W1(b, a)
		if math.IsNaN(ab) || ab < 0 {
			t.Fatalf("W1(a,b) = %v, want finite >= 0 (a=%v b=%v)", ab, a, b)
		}
		if math.Abs(ab-ba) > 1e-9*(1+math.Abs(ab)) {
			t.Fatalf("W1 not symmetric: %v vs %v", ab, ba)
		}
		if self := W1(a, a); math.Abs(self) > 1e-12 {
			t.Fatalf("W1(a,a) = %v, want 0", self)
		}
		// Duplicating every sample leaves the empirical CDF unchanged.
		aa := append(append([]float64(nil), a...), a...)
		if d := W1(aa, b); math.Abs(d-ab) > 1e-9*(1+math.Abs(ab)) {
			t.Fatalf("W1 changed under sample duplication: %v vs %v", d, ab)
		}
		// KS shares the merged-support walk; check its axioms too.
		ks := KS(a, b)
		if math.IsNaN(ks) || ks < 0 || ks > 1 {
			t.Fatalf("KS(a,b) = %v, want in [0,1]", ks)
		}
		if math.Abs(ks-KS(b, a)) > 1e-12 {
			t.Fatal("KS not symmetric")
		}
	})
}

func TestW1NaNInput(t *testing.T) {
	nan := math.NaN()
	cases := [][2][]float64{
		{{nan, 1, 2}, {3, 4}},        // unequal counts: would stall the CDF walk unguarded
		{{1, 2}, {nan, 3}},           // equal counts
		{{nan}, {nan, nan}},          // all-NaN
		{{1, 2, 3}, {4, nan}},        // NaN in shorter side
		{{math.Inf(1), nan}, {1, 2}}, // NaN alongside Inf
	}
	for _, c := range cases {
		if !math.IsNaN(W1(c[0], c[1])) {
			t.Fatalf("W1(%v, %v) must be NaN", c[0], c[1])
		}
		if !math.IsNaN(KS(c[0], c[1])) {
			t.Fatalf("KS(%v, %v) must be NaN", c[0], c[1])
		}
	}
}

func TestCDFProperties(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 2})
	// At is monotone and hits 0/1 at the support edges.
	prev := 0.0
	for _, x := range []float64{0, 1, 1.5, 2, 2.5, 3, 4} {
		p := c.At(x)
		if p < prev {
			t.Fatalf("CDF.At not monotone at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
	if c.At(0.5) != 0 || c.At(3) != 1 {
		t.Fatalf("CDF edges wrong: At(0.5)=%v At(3)=%v", c.At(0.5), c.At(3))
	}
	// Quantile stays within the sample range and is monotone in q.
	prevQ := math.Inf(-1)
	for q := -0.5; q <= 1.5; q += 0.125 {
		v := c.Quantile(q)
		if v < 1 || v > 3 {
			t.Fatalf("Quantile(%v) = %v outside sample range", q, v)
		}
		if v < prevQ {
			t.Fatalf("Quantile not monotone at %v", q)
		}
		prevQ = v
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF must report NaN")
	}
}
