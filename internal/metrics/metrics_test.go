package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"mimicnet/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestW1Identical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := W1(a, a); got != 0 {
		t.Errorf("W1(a,a) = %v, want 0", got)
	}
}

func TestW1Shift(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 3, 4}
	if got := W1(a, b); !almost(got, 1.0, 1e-12) {
		t.Errorf("W1 shift = %v, want 1.0", got)
	}
}

func TestW1UnequalLengths(t *testing.T) {
	// a = {0,1} uniform-ish; b = {0, 0.5, 1}. Exact integral check:
	// CDF_a steps 0->0.5 at 0, ->1 at 1. CDF_b steps 1/3 at 0, 2/3 at .5, 1 at 1.
	// |diff| over (0,0.5): |0.5-1/3|=1/6; over (0.5,1): |0.5-2/3|=1/6.
	// Integral = 1/6*0.5 + 1/6*0.5 = 1/6.
	a := []float64{0, 1}
	b := []float64{0, 0.5, 1}
	if got := W1(a, b); !almost(got, 1.0/6, 1e-12) {
		t.Errorf("W1 unequal = %v, want %v", got, 1.0/6)
	}
}

func TestW1Symmetric(t *testing.T) {
	a := []float64{1, 5, 9, 2}
	b := []float64{3, 3, 7}
	if !almost(W1(a, b), W1(b, a), 1e-12) {
		t.Error("W1 not symmetric")
	}
}

func TestW1Empty(t *testing.T) {
	if !math.IsNaN(W1(nil, []float64{1})) {
		t.Error("W1 with empty input should be NaN")
	}
}

// Property: W1 of a distribution against a constant-shifted copy equals
// the shift magnitude.
func TestW1ShiftProperty(t *testing.T) {
	f := func(raw []float64, shiftRaw int8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return true
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(vals))
		for i, v := range vals {
			shifted[i] = v + shift
		}
		return almost(W1(vals, shifted), math.Abs(shift), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality (W1 is a metric).
func TestW1TriangleProperty(t *testing.T) {
	f := func(ar, br, cr [5]int8) bool {
		conv := func(x [5]int8) []float64 {
			out := make([]float64, 5)
			for i, v := range x {
				out[i] = float64(v)
			}
			return out
		}
		a, b, c := conv(ar), conv(br), conv(cr)
		return W1(a, c) <= W1(a, b)+W1(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); !almost(got, 2.5, 1e-12) {
		t.Errorf("Quantile(0.5) = %v, want 2.5", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.At(1)) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty CDF should return NaN")
	}
}

func TestFlowMSE(t *testing.T) {
	real := map[string]float64{"a": 1, "b": 2, "c": 3}
	mimic := map[string]float64{"a": 1.5, "b": 2, "d": 9}
	mse, overlap := FlowMSE(real, mimic)
	if !almost(overlap, 2.0/3, 1e-12) {
		t.Errorf("overlap = %v, want 2/3", overlap)
	}
	if !almost(mse, 0.125, 1e-12) { // (0.25 + 0) / 2
		t.Errorf("mse = %v, want 0.125", mse)
	}
}

func TestFlowMSENoOverlap(t *testing.T) {
	mse, overlap := FlowMSE(map[string]float64{"a": 1}, map[string]float64{"b": 1})
	if !math.IsNaN(mse) || overlap != 0 {
		t.Errorf("no-overlap FlowMSE = %v, %v", mse, overlap)
	}
	mse, overlap = FlowMSE(nil, nil)
	if !math.IsNaN(mse) || overlap != 0 {
		t.Error("empty FlowMSE should be NaN, 0")
	}
}

func TestCollectorFlows(t *testing.T) {
	c := NewCollector()
	c.FlowStarted("f1", 0, 5, 1000, 1*sim.Second)
	c.FlowStarted("f2", 1, 6, 2000, 1*sim.Second)
	c.FlowCompleted("f1", 3*sim.Second)
	c.FlowCompleted("missing", 4*sim.Second) // unknown flow ignored

	fcts := c.FCTs()
	if len(fcts) != 1 || !almost(fcts[0], 2.0, 1e-9) {
		t.Errorf("FCTs = %v, want [2.0]", fcts)
	}
	byID := c.FCTByID()
	if len(byID) != 1 || !almost(byID["f1"], 2.0, 1e-9) {
		t.Errorf("FCTByID = %v", byID)
	}
	flows := c.Flows()
	if len(flows) != 2 {
		t.Fatalf("Flows len = %d", len(flows))
	}
	if flows[0].ID != "f1" || flows[1].ID != "f2" {
		t.Errorf("Flows not sorted by ID: %v, %v", flows[0].ID, flows[1].ID)
	}
	if flows[1].Complete {
		t.Error("f2 should be incomplete")
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector()
	// 1000 bytes in bin 0 and 3000 bytes in bin 1 for host 0.
	c.BytesReceived(0, 1000, 50*sim.Millisecond)
	c.BytesReceived(0, 2000, 150*sim.Millisecond)
	c.BytesReceived(0, 1000, 160*sim.Millisecond)
	tps := c.Throughputs()
	if len(tps) != 2 {
		t.Fatalf("throughput samples = %v", tps)
	}
	// 1000 bytes / 0.1s = 10000 Bps; 3000/0.1 = 30000 Bps (sorted ascending).
	if !almost(tps[0], 10000, 1e-6) || !almost(tps[1], 30000, 1e-6) {
		t.Errorf("throughputs = %v", tps)
	}
}

func TestCollectorRTT(t *testing.T) {
	c := NewCollector()
	c.RTTSample(0.002)
	c.RTTSample(0.001)
	rtts := c.RTTs()
	if len(rtts) != 2 || rtts[0] != 0.001 {
		t.Errorf("RTTs = %v", rtts)
	}
}

func TestFlowRecordFCT(t *testing.T) {
	f := FlowRecord{Start: sim.Second, End: 2 * sim.Second}
	if !almost(f.FCT(), 1.0, 1e-12) {
		t.Errorf("FCT = %v", f.FCT())
	}
}

func TestKS(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KS(a, a); got != 0 {
		t.Errorf("KS(a,a) = %v", got)
	}
	// Disjoint supports: KS = 1.
	if got := KS([]float64{1, 2}, []float64{10, 20}); got != 1 {
		t.Errorf("disjoint KS = %v, want 1", got)
	}
	// Half-overlap: {0,1} vs {1,2}: max diff at x in [0,1): |0.5-0| = 0.5.
	if got := KS([]float64{0, 1}, []float64{1, 2}); !almost(got, 0.5, 1e-12) {
		t.Errorf("KS = %v, want 0.5", got)
	}
	if !math.IsNaN(KS(nil, a)) {
		t.Error("empty KS should be NaN")
	}
	if !almost(KS(a, []float64{1, 2, 3}), KS([]float64{1, 2, 3}, a), 1e-12) {
		t.Error("KS not symmetric")
	}
}

// Property: KS is within [0,1] and zero only for identical multisets.
func TestKSBoundsProperty(t *testing.T) {
	f := func(ar, br [6]int8) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range ar {
			a[i], b[i] = float64(ar[i]), float64(br[i])
		}
		ks := KS(a, b)
		return ks >= 0 && ks <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMergedEqualsUnified checks the shard-merge helper: scattering the
// same samples across several collectors and merging must reproduce the
// unified collector's outputs exactly.
func TestMergedEqualsUnified(t *testing.T) {
	type ev struct {
		host  int
		bytes int64
		at    sim.Time
	}
	unified := NewCollector()
	parts := []*Collector{NewCollector(), NewCollector(), NewCollector()}
	flows := []struct {
		id       string
		src, dst int
		bytes    int64
		start    sim.Time
		end      sim.Time
	}{
		{"a", 0, 4, 1000, 0, 10 * sim.Millisecond},
		{"b", 1, 5, 2000, 2 * sim.Millisecond, 0}, // never completes
		{"c", 2, 6, 3000, sim.Millisecond, 30 * sim.Millisecond},
		{"d", 3, 7, 500, 5 * sim.Millisecond, 7 * sim.Millisecond},
	}
	for i, f := range flows {
		for _, c := range []*Collector{unified, parts[i%len(parts)]} {
			c.FlowStarted(f.id, f.src, f.dst, f.bytes, f.start)
			if f.end != 0 {
				c.FlowCompleted(f.id, f.end)
			}
		}
	}
	rtts := []float64{0.004, 0.001, 0.003, 0.002}
	for i, r := range rtts {
		unified.RTTSample(r)
		parts[i%len(parts)].RTTSample(r)
	}
	evs := []ev{{4, 100, sim.Millisecond}, {4, 200, 150 * sim.Millisecond},
		{5, 300, sim.Millisecond}, {4, 50, 2 * sim.Millisecond}}
	for i, e := range evs {
		unified.BytesReceived(e.host, e.bytes, e.at)
		parts[i%len(parts)].BytesReceived(e.host, e.bytes, e.at)
	}

	m := Merged(parts...)
	cmp := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d samples", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	cmp("FCTs", unified.FCTs(), m.FCTs())
	cmp("RTTs", unified.RTTs(), m.RTTs())
	cmp("Throughputs", unified.Throughputs(), m.Throughputs())
	uf, mf := unified.FCTByID(), m.FCTByID()
	if len(uf) != len(mf) {
		t.Fatalf("FCTByID: %d vs %d", len(uf), len(mf))
	}
	for id, v := range uf {
		if mf[id] != v {
			t.Errorf("FCTByID[%s]: %v vs %v", id, mf[id], v)
		}
	}
	if len(m.Flows()) != len(unified.Flows()) {
		t.Errorf("Flows: %d vs %d", len(m.Flows()), len(unified.Flows()))
	}
}

// TestMergedBinWidthMismatchPanics pins the merge precondition.
func TestMergedBinWidthMismatchPanics(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	b.ThroughputBin = a.ThroughputBin * 2
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bin-width mismatch")
		}
	}()
	Merged(a, b)
}
