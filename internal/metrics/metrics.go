// Package metrics implements MimicNet's evaluation metrics: empirical
// CDFs, the Wasserstein-1 (earth mover's) distance between them, the
// MSE-over-intersection flow metric, and collectors for the three
// end-to-end observables the paper reports—flow completion time (FCT),
// per-server throughput binned into fixed intervals, and packet RTT
// (paper §7.2, §9).
package metrics

import (
	"math"
	"sort"

	"mimicnet/internal/sim"
)

// W1 computes the Wasserstein-1 distance between the empirical
// distributions of a and b: the integral of |CDF_a(x) - CDF_b(x)| dx.
// For one-dimensional empirical distributions with equal sample counts
// this reduces to the mean absolute difference of sorted samples; for
// unequal counts we integrate the CDF difference exactly over the merged
// support. Lower is better; zero means identical distributions. Empty
// inputs or inputs containing NaN yield NaN: there is no meaningful
// distance to or from an ill-defined distribution.
func W1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	// sort.Float64s places NaNs first; without this guard the merged-
	// support walk below could never advance past one (NaN != NaN).
	if math.IsNaN(as[0]) || math.IsNaN(bs[0]) {
		return math.NaN()
	}
	if len(as) == len(bs) {
		var sum float64
		for i := range as {
			sum += math.Abs(as[i] - bs[i])
		}
		return sum / float64(len(as))
	}
	// General case: piecewise-constant CDFs integrated over merged points.
	var total float64
	i, j := 0, 0
	prev := math.Min(as[0], bs[0])
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		total += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
	}
	return total
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the distribution.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[len(c.sorted)-1]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Values returns the sorted samples (not a copy; do not modify).
func (c *CDF) Values() []float64 { return c.sorted }

// FlowMSE computes MimicNet's MSE-based 1-to-1 metric over the
// intersection of flows completed in both runs (paper §7.2):
//
//	MSE = 1/|Flows| * sum_f (realFCT_f - mimicFCT_f)^2
//
// It returns the MSE and the overlap ratio |intersection| / |real flows|.
// Callers should, per the paper, discard comparisons with overlap < 0.8.
func FlowMSE(real, mimic map[string]float64) (mse, overlap float64) {
	if len(real) == 0 {
		return math.NaN(), 0
	}
	var n int
	var sum float64
	for id, rv := range real {
		mv, ok := mimic[id]
		if !ok {
			continue
		}
		d := rv - mv
		sum += d * d
		n++
	}
	overlap = float64(n) / float64(len(real))
	if n == 0 {
		return math.NaN(), 0
	}
	return sum / float64(n), overlap
}

// MinOverlap is the default threshold below which FlowMSE comparisons are
// ignored (paper §7.2: "By default, MimicNet ignores models with overlap
// < 80%").
const MinOverlap = 0.8

// FlowRecord describes one completed (or still running) flow as observed
// at the hosts of the observable cluster.
type FlowRecord struct {
	ID       string
	SrcHost  int // global host index
	DstHost  int
	Bytes    int64
	Start    sim.Time
	End      sim.Time // zero if not yet complete
	Complete bool
}

// FCT returns the flow completion time in seconds.
func (f *FlowRecord) FCT() float64 { return (f.End - f.Start).Seconds() }

// Collector accumulates the three end-to-end metrics during a simulation
// run. It is instantiated for the hosts of the observable cluster.
type Collector struct {
	// ThroughputBin is the width of throughput accounting intervals
	// (paper: 100 ms).
	ThroughputBin sim.Time

	flows map[string]*FlowRecord
	rtts  []float64
	// bytesPerBin[host][bin] accumulates received bytes.
	bytesPerBin map[int]map[int64]int64
}

// NewCollector creates a collector with the paper's default 100 ms
// throughput bin.
func NewCollector() *Collector {
	return &Collector{
		ThroughputBin: 100 * sim.Millisecond,
		flows:         make(map[string]*FlowRecord),
		bytesPerBin:   make(map[int]map[int64]int64),
	}
}

// FlowStarted records a flow's existence and start time.
func (c *Collector) FlowStarted(id string, src, dst int, bytes int64, at sim.Time) {
	c.flows[id] = &FlowRecord{ID: id, SrcHost: src, DstHost: dst, Bytes: bytes, Start: at}
}

// FlowCompleted records a flow's completion time.
func (c *Collector) FlowCompleted(id string, at sim.Time) {
	if f, ok := c.flows[id]; ok {
		f.End = at
		f.Complete = true
	}
}

// RTTSample records one packet round-trip time in seconds (measured at the
// observable cluster's hosts from send to ACK receipt).
func (c *Collector) RTTSample(seconds float64) {
	c.rtts = append(c.rtts, seconds)
}

// BytesReceived accounts payload bytes delivered to a host at the given
// simulated time, feeding the binned per-server throughput metric.
func (c *Collector) BytesReceived(host int, n int64, at sim.Time) {
	bins, ok := c.bytesPerBin[host]
	if !ok {
		bins = make(map[int64]int64)
		c.bytesPerBin[host] = bins
	}
	bins[int64(at/c.ThroughputBin)] += n
}

// FCTs returns completion times (seconds) of all completed flows.
func (c *Collector) FCTs() []float64 {
	out := make([]float64, 0, len(c.flows))
	for _, f := range c.flows {
		if f.Complete {
			out = append(out, f.FCT())
		}
	}
	sort.Float64s(out)
	return out
}

// FCTByID returns a map from flow ID to FCT seconds for completed flows,
// the input to FlowMSE.
func (c *Collector) FCTByID() map[string]float64 {
	out := make(map[string]float64, len(c.flows))
	for id, f := range c.flows {
		if f.Complete {
			out[id] = f.FCT()
		}
	}
	return out
}

// Flows returns all flow records (completed or not).
func (c *Collector) Flows() []*FlowRecord {
	out := make([]*FlowRecord, 0, len(c.flows))
	for _, f := range c.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Throughputs returns per-server per-bin throughput samples in bytes per
// second, the distribution plotted in Figures 7b/7e.
func (c *Collector) Throughputs() []float64 {
	binSec := c.ThroughputBin.Seconds()
	var out []float64
	for _, bins := range c.bytesPerBin {
		for _, bytes := range bins {
			out = append(out, float64(bytes)/binSec)
		}
	}
	sort.Float64s(out)
	return out
}

// RTTs returns recorded RTT samples in seconds.
func (c *Collector) RTTs() []float64 {
	out := append([]float64(nil), c.rtts...)
	sort.Float64s(out)
	return out
}

// Merged combines per-shard collectors from a partitioned run into one.
// The merge is lossless when each flow's records live entirely in one
// collector (MimicNet shards by cluster, and a flow's start/completion
// are both observed at its source host's logical process) — flow maps
// then union disjointly, while RTT samples concatenate and throughput
// bins add. All query methods sort their output, so a merged collector
// reports identical distributions regardless of how samples were
// scattered across shards. The bin width is taken from the first
// collector; all inputs must agree.
func Merged(cs ...*Collector) *Collector {
	out := NewCollector()
	if len(cs) > 0 {
		out.ThroughputBin = cs[0].ThroughputBin
	}
	for _, c := range cs {
		if c.ThroughputBin != out.ThroughputBin {
			panic("metrics: Merged collectors disagree on ThroughputBin")
		}
		for id, f := range c.flows {
			cp := *f
			out.flows[id] = &cp
		}
		out.rtts = append(out.rtts, c.rtts...)
		for host, bins := range c.bytesPerBin {
			ob, ok := out.bytesPerBin[host]
			if !ok {
				ob = make(map[int64]int64, len(bins))
				out.bytesPerBin[host] = ob
			}
			for bin, n := range bins {
				ob[bin] += n
			}
		}
	}
	return out
}

// KS computes the Kolmogorov–Smirnov statistic between the empirical
// distributions of a and b: the maximum absolute CDF difference. MimicNet
// lets users supply their own accuracy metrics (§3, §7.2); KS is a
// common alternative to W1 that emphasizes the worst point of the CDF
// rather than its integral.
func KS(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	// Same NaN guard as W1: a leading NaN would stall the merge walk.
	if math.IsNaN(as[0]) || math.IsNaN(bs[0]) {
		return math.NaN()
	}
	var maxDiff float64
	i, j := 0, 0
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if d := math.Abs(fa - fb); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}
