GO ?= go

.PHONY: build test test-race vet bench bench-all fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the event
# scheduler, the batched inference engine and its worker pool, and the
# cluster composition layer that drives them.
test-race:
	$(GO) test -race ./internal/sim ./internal/core ./internal/cluster ./internal/ml

vet:
	$(GO) vet ./...

# Batched vs per-packet inference cost (the ns/step metric must show the
# batched engine at least 2x cheaper per step for B >= 16).
bench:
	$(GO) test -run xxx -bench BenchmarkMimicInference -benchtime 0.5s -count 2 .

# Full paper reproduction: every table/figure benchmark (slow).
bench-all:
	$(GO) test -bench . -benchmem .

fuzz:
	$(GO) test -run xxx -fuzz FuzzMulLanes -fuzztime 30s ./internal/ml

clean:
	$(GO) clean -testcache
	rm -f mimicnet.test
