GO ?= go

.PHONY: build test test-race test-kernels vet vuln bench bench-all bench-json bench-train bench-dataset bench-ckpt bench-smoke fuzz ci serve-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the PDES
# kernel and its worker pool, the sharded fabric, the batched inference
# and training engines, the cluster composition layer that drives them,
# the parallel hyper-parameter search, and the estimation service
# (scheduler, registry, HTTP surface).
test-race:
	$(GO) test -race ./internal/sim ./internal/netsim ./internal/core ./internal/cluster ./internal/ml ./internal/tuning ./internal/serve

# vet runs under both build configurations — the default (assembly
# kernels) and purego — so an accelerator-tagged file can't silently
# become load-bearing or rot behind its tag.
vet:
	$(GO) vet ./...
	GOFLAGS=-tags=purego $(GO) vet ./...

# test-kernels runs the ML tests under every forced GEMM kernel family
# (scalar, sse2, avx2 when the CPU has it) plus the purego build, so a
# kernel can't pass CI only because it happened to be the default pick.
# All families are bitwise identical, so the same tests must pass
# unchanged under each — including the engine-vs-legacy golden parity
# suite, whose fingerprints are kernel-independent for the same reason.
test-kernels:
	MIMICNET_GEMM=scalar $(GO) test -count=1 ./internal/ml
	MIMICNET_GEMM=scalar $(GO) test -count=1 -run TestEngineGoldenParity ./internal/core
	MIMICNET_GEMM=sse2 $(GO) test -count=1 ./internal/ml
	MIMICNET_GEMM=sse2 $(GO) test -count=1 -run TestEngineGoldenParity ./internal/core
	@if grep -q avx2 /proc/cpuinfo 2>/dev/null; then \
		MIMICNET_GEMM=avx2 $(GO) test -count=1 ./internal/ml; \
		MIMICNET_GEMM=avx2 $(GO) test -count=1 -run TestEngineGoldenParity ./internal/core; \
	else \
		echo "skipping MIMICNET_GEMM=avx2 (CPU lacks AVX2)"; \
	fi
	GOFLAGS=-tags=purego $(GO) test -count=1 ./internal/ml
	GOFLAGS=-tags=purego $(GO) test -count=1 -run TestEngineGoldenParity ./internal/core

# Known-vulnerability scan, gated on the tool being installed: the build
# environment is hermetic (no network, no `go install`), so CI machines
# without govulncheck skip the scan instead of failing.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "skipping govulncheck (not installed; go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Everything the driver gates on, in one target.
ci: vet vuln test-race test-kernels bench-smoke

# Batched vs per-packet inference cost (the ns/step metric must show the
# batched engine at least 2x cheaper per step for B >= 16).
bench:
	$(GO) test -run xxx -bench BenchmarkMimicInference -benchtime 0.5s -count 2 .

# Sequential vs sharded composed estimate at N=8; writes machine-readable
# ns/simulated-second, events/sec, allocs/event to BENCH_compose.json.
# Also measures every GEMM kernel family (raw GFLOP/s, inference ns/step,
# train samples/sec, speedups vs sse2) into BENCH_gemm.json.
bench-json:
	BENCH_COMPOSE_JSON=BENCH_compose.json $(GO) test -run xxx -bench BenchmarkComposedRun -benchtime 3x .
	BENCH_GEMM_JSON=$(CURDIR)/BENCH_gemm.json $(GO) test -run xxx -bench BenchmarkGemmKernels -benchtime 2s ./internal/ml

# Sequential vs minibatch training on one identical dataset; writes
# machine-readable samples/sec, ns/sample, allocs/sample to
# BENCH_train.json (the batched trainer must be >= 2x samples/sec at
# B=16).
bench-train:
	BENCH_TRAIN_JSON=BENCH_train.json $(GO) test -run xxx -bench BenchmarkTrain -benchtime 3x .

# Legacy window-of-slices vs columnar dataset build on one identical
# synthetic boundary trace; writes allocs/sample, bytes/sample,
# overhead-bytes/sample and the cross-layout ratios to
# BENCH_dataset.json (the columnar build must cut allocated overhead
# bytes per sample by >= 5x with train samples/sec unregressed).
bench-dataset:
	BENCH_DATASET_JSON=BENCH_dataset.json $(GO) test -run xxx -bench BenchmarkDatasetBuild -benchtime 3x .

# Durability cost sheet: journal append throughput (per-record vs
# batched fsync), checkpoint container write/restore latency across
# payload sizes, 10k-record recovery replay, and the training wall-clock
# overhead of checkpointing at the default interval (acceptance: <= 2%).
# Machine-readable copy lands in BENCH_ckpt.json.
bench-ckpt:
	BENCH_CKPT_JSON=$(CURDIR)/BENCH_ckpt.json $(GO) test -run xxx -bench BenchmarkDurability -benchtime 1x ./internal/durable

# Full paper reproduction: every table/figure benchmark (slow).
bench-all:
	$(GO) test -bench . -benchmem .

# One iteration of every Benchmark* (~3-4 min): a crash-and-wiring
# canary over the whole suite, not a measurement. Tables land in
# bench_output.txt to keep CI logs readable.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x . > bench_output.txt
	$(GO) test -run xxx -bench BenchmarkGemmKernels -benchtime 1x ./internal/ml >> bench_output.txt

fuzz:
	$(GO) test -run xxx -fuzz FuzzMulLanes -fuzztime 30s ./internal/ml
	$(GO) test -run xxx -fuzz FuzzGemmKernels -fuzztime 30s ./internal/ml
	$(GO) test -run xxx -fuzz FuzzGemmBackwardKernels -fuzztime 30s ./internal/ml
	$(GO) test -run xxx -fuzz FuzzGateKernels -fuzztime 30s ./internal/ml
	$(GO) test -run xxx -fuzz FuzzW1 -fuzztime 30s ./internal/metrics
	$(GO) test -run xxx -fuzz FuzzHistogramObserve -fuzztime 30s ./internal/obs

# End-to-end daemon check: boots mimicnetd on a random port, runs a cold
# job over HTTP, proves the identical resubmission skips training via a
# registry cache hit in /stats, measures cold/warm latency and warm
# throughput (BENCH_serve.json), and SIGTERMs itself mid-job to verify
# graceful drain (in-flight job finishes, new submissions rejected).
serve-smoke:
	$(GO) run ./cmd/mimicnetd -smoke -bench-json BENCH_serve.json

clean:
	$(GO) clean -testcache
	rm -f mimicnet.test ml.test bench_output.txt BENCH_compose.json BENCH_serve.json BENCH_train.json
